"""CI serve-smoke: the query service under concurrent mixed load.

Boots the full stack -- :class:`repro.serve.service.QueryService` fronted by
the JSON-lines TCP server -- on a scaled DIMACS analogue, then drives it
with N concurrent client connections streaming point queries while one
updater connection lands a ``rush_hour_stream`` batch sequence through the
wire protocol.  Measures:

* **idle** read latency (p50/p99) and throughput with no updates in
  flight -- the RCU read side's floor, and
* **under-load** latency/throughput while batches commit and generations
  swap -- what a reader pays for concurrent maintenance (pointer-swap
  commits mean: not much).

Every response carries the version of the generation that answered; a
sample of answers is checked against a client-side per-version Dijkstra
oracle, so the run fails loudly if the service ever serves a torn or stale
read.  ``--check`` gates on *correctness only* (zero dropped, zero
incorrect): the latency ratio is recorded for trajectory, not gated,
because CI runner load would make a wall-clock gate flaky.

Schema (``repro-perf-serve/1``)::

    {
      "schema": "repro-perf-serve/1",
      "dataset": "NY", "scale": 1.0, "seed": 2025, "python": "3.11.7",
      "clients": 8, "duration_seconds": ...,     # load phase wall-clock
      "build": {"num_vertices", "num_edges", "seconds_to_ready"},
      "idle": {"queries", "qps", "p50_us", "p99_us"},
      "load": {"queries", "qps", "p50_us", "p99_us",
               "batches_committed", "updates_committed", "versions"},
      "correctness": {"checked", "incorrect", "dropped"},
      "p99_ratio": ...          # load p99 / idle p99 (the RCU claim)
    }

Run locally with::

    PYTHONPATH=src python benchmarks/perf_serve.py --out BENCH_serve.json --check
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import platform
import random
import sys
import time
from pathlib import Path

from repro.algorithms.dijkstra import dijkstra_with_target
from repro.core.config import STLConfig
from repro.graph.graph import Graph
from repro.serve.server import QueryServer
from repro.serve.service import QueryService
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import rush_hour_stream

SCHEMA = "repro-perf-serve/1"


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(math.ceil(q * len(sorted_values))) - 1)
    return sorted_values[max(index, 0)]


def _latency_summary(latencies: list[float], elapsed: float) -> dict:
    ordered = sorted(latencies)
    return {
        "queries": len(ordered),
        "qps": len(ordered) / elapsed if elapsed > 0 else 0.0,
        "p50_us": _percentile(ordered, 0.50) * 1e6,
        "p99_us": _percentile(ordered, 0.99) * 1e6,
    }


class _Oracle:
    """Per-version committed graph states, mirrored client-side.

    Same discipline as the service concurrency suite: ``submit`` records
    the post-batch state under the committed version; a response tagged
    with a version newer than every recorded state (the swap-to-record
    window) is checked against the pending batch's target state.
    """

    def __init__(self, graph: Graph):
        self.states: dict[int, Graph] = {0: graph.copy()}
        self.pending: Graph | None = None

    def stage(self, triples: list[tuple[int, int, float]]) -> None:
        expected = self.states[max(self.states)].copy()
        for u, v, w in triples:
            expected.set_weight(u, v, w)
        self.pending = expected

    def commit(self, version: int) -> None:
        assert self.pending is not None
        self.states[version] = self.pending
        self.pending = None

    def matches(self, s: int, t: int, distance: float, version: int) -> bool:
        keys = [v for v in self.states if v <= version]
        candidates = [self.states[max(keys)]] if keys else []
        if self.pending is not None and version > max(self.states):
            candidates.append(self.pending)
        for state in candidates:
            expected = dijkstra_with_target(state, s, t)
            if math.isinf(expected):
                if math.isinf(distance):
                    return True
            elif abs(expected - distance) < 1e-6:
                return True
        return False


class _Client:
    """One persistent JSON-lines connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def rpc(self, payload: dict) -> dict | None:
        """One request/response; ``None`` means the response was dropped."""
        try:
            self.writer.write(json.dumps(payload).encode("ascii") + b"\n")
            await self.writer.drain()
            line = await self.reader.readline()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return None
        if not line:
            return None
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            return None

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _query_phase(
    host: str,
    port: int,
    graph: Graph,
    oracle: _Oracle,
    num_clients: int,
    duration: float,
    seed: int,
    check_every: int,
    counters: dict,
) -> tuple[list[float], float]:
    """N clients stream queries until ``duration`` elapses; returns latencies."""
    n = graph.num_vertices
    stop_at = time.perf_counter() + duration
    latencies: list[float] = []

    async def client(k: int) -> None:
        rng = random.Random(seed * 1000 + k)
        connection = await _Client.connect(host, port)
        issued = 0
        try:
            while time.perf_counter() < stop_at:
                s, t = rng.randrange(n), rng.randrange(n)
                started = time.perf_counter()
                response = await connection.rpc({"op": "query", "s": s, "t": t})
                latency = time.perf_counter() - started
                issued += 1
                if response is None or not response.get("ok"):
                    counters["dropped"] += 1
                    continue
                latencies.append(latency)
                if issued % check_every == 0:
                    distance = response["distance"]
                    distance = math.inf if distance is None else float(distance)
                    counters["checked"] += 1
                    if not oracle.matches(s, t, distance, int(response["version"])):
                        counters["incorrect"] += 1
                # Yield so the event loop interleaves clients fairly.
                await asyncio.sleep(0)
        finally:
            await connection.close()

    started = time.perf_counter()
    await asyncio.gather(*(client(k) for k in range(num_clients)))
    return latencies, time.perf_counter() - started


async def _updater(
    host: str,
    port: int,
    oracle: _Oracle,
    batches: list[list[tuple[int, int, float]]],
    duration: float,
    counters: dict,
) -> None:
    """Land the rush-hour batches, spread across the load phase."""
    connection = await _Client.connect(host, port)
    interval = duration / max(len(batches), 1)
    try:
        for triples in batches:
            if not triples:
                await asyncio.sleep(interval)
                continue
            oracle.stage(triples)
            response = await connection.rpc(
                {"op": "update", "updates": [list(t) for t in triples]}
            )
            if response is None or not response.get("ok"):
                counters["dropped"] += 1
                oracle.pending = None
            else:
                oracle.commit(int(response["version"]))
                counters["batches"] += 1
                counters["updates"] += len(triples)
            await asyncio.sleep(interval)
    finally:
        await connection.close()


async def run_serve_benchmark(args: argparse.Namespace) -> dict:
    graph = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
    oracle = _Oracle(graph)

    # The rush-hour stream is generated against a copy up front; shipping
    # absolute new weights over the wire replays it faithfully.
    hotspots = max(2, round((graph.num_vertices / 5000) ** 0.5 * 3))
    stream = rush_hour_stream(
        graph.copy(), num_steps=args.steps, num_hotspots=hotspots, radius=4, seed=args.seed
    )
    batches = [
        [(u.u, u.v, u.new_weight) for u in batch.updates] for batch in stream
    ]

    config = STLConfig(engine=args.engine) if args.engine else STLConfig()
    service = QueryService(graph, config=config)
    server = QueryServer(service, host="127.0.0.1", port=0)
    counters = {"dropped": 0, "checked": 0, "incorrect": 0, "batches": 0, "updates": 0}

    async with service, server:
        host, port = server.address
        build_timer = time.perf_counter()
        await service.wait_ready()
        seconds_to_ready = time.perf_counter() - build_timer

        idle_latencies, idle_elapsed = await _query_phase(
            host, port, graph, oracle, args.clients, args.idle_seconds,
            args.seed, args.check_every, counters,
        )

        load_phase = _query_phase(
            host, port, graph, oracle, args.clients, args.duration,
            args.seed + 1, args.check_every, counters,
        )
        (load_latencies, load_elapsed), _ = await asyncio.gather(
            load_phase,
            _updater(host, port, oracle, batches, args.duration, counters),
        )
        stats = service.stats()

    idle = _latency_summary(idle_latencies, idle_elapsed)
    load = _latency_summary(load_latencies, load_elapsed)
    load["batches_committed"] = counters["batches"]
    load["updates_committed"] = counters["updates"]
    load["versions"] = stats["version"]
    ratio = (load["p99_us"] / idle["p99_us"]) if idle["p99_us"] > 0 else 0.0

    return {
        "schema": SCHEMA,
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "python": platform.python_version(),
        "clients": args.clients,
        "duration_seconds": load_elapsed,
        "build": {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seconds_to_ready": seconds_to_ready,
        },
        "idle": idle,
        "load": load,
        "correctness": {
            "checked": counters["checked"],
            "incorrect": counters["incorrect"],
            "dropped": counters["dropped"],
        },
        "p99_ratio": ratio,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="NY")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--idle-seconds", type=float, default=3.0,
                        help="idle measurement phase length")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="mixed-load phase length (seconds)")
    parser.add_argument("--steps", type=int, default=40,
                        help="rush-hour stream steps landed during the load phase")
    parser.add_argument("--check-every", type=int, default=20,
                        help="oracle-check every Nth response per client")
    parser.add_argument("--engine", choices=("pareto", "label_search"), default=None)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the measurement JSON here (e.g. BENCH_serve.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on any dropped or incorrect response")
    args = parser.parse_args(argv)

    result = asyncio.run(run_serve_benchmark(args))

    build = result["build"]
    print(f"{args.dataset} x{args.scale}: {build['num_vertices']} vertices, "
          f"ready in {build['seconds_to_ready']:.2f}s")
    for phase in ("idle", "load"):
        p = result[phase]
        print(f"{phase:>5}: {p['queries']} queries, {p['qps']:,.0f} q/s, "
              f"p50 {p['p50_us']:.0f} us, p99 {p['p99_us']:.0f} us")
    load = result["load"]
    print(f" load: {load['batches_committed']} batches / "
          f"{load['updates_committed']} updates committed, "
          f"{load['versions']} generations published")
    correctness = result["correctness"]
    print(f"oracle: {correctness['checked']} checked, "
          f"{correctness['incorrect']} incorrect, {correctness['dropped']} dropped")
    print(f"p99 under load = x{result['p99_ratio']:.2f} idle p99")

    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")

    if args.check:
        failed = correctness["incorrect"] > 0 or correctness["dropped"] > 0
        print("serve-smoke:", "FAIL" if failed else "OK")
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
