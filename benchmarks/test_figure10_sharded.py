"""Benchmark: Figure 10 addendum -- single-thread vs sharded batch engine.

The 1k-update workload of ``test_figure10_batch_vs_rebuild`` is replayed
through the serial :class:`repro.core.batch.BatchedParetoEngine` and through
the worker-pool :class:`repro.core.shard.ShardedBatchEngine`, recording both
wall-clocks side by side and asserting the sharded engine's equivalence
guarantee (entry-wise identical labels) on the exact workload the paper's
figure uses.

Under CPython's GIL the pool provides concurrency rather than parallel
bytecode execution, so the sharded wall-clock is reported as a diagnostic of
the plan/merge overhead (bounded by the assertion below) rather than as a
speedup claim; the shard plan quality (balance, residual share) is what the
three-way :class:`repro.core.batch.BatchPolicy` crossover keys on.
"""

from benchmarks.conftest import report
from repro.core.batch import BatchPolicy
from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import ExperimentConfig, measure_batched_seconds
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import mixed_update_stream


def test_figure10_sharded_vs_serial_1k(bench_config):
    """Sharded vs serial batch engine on the 1k-update Figure 10 workload.

    Two indexes share one hierarchy/label build; the same stream halves (a
    1,000-edge sample doubled, then restored) go through the serial engine on
    one and the sharded engine on the other, so the final labels must agree
    entry-wise -- the equivalence guarantee of
    :class:`repro.core.shard.ShardedBatchEngine` -- and both must return the
    graph to its original weights.
    """
    config = ExperimentConfig(
        datasets=bench_config.datasets[:1],
        scale=bench_config.scale,
        leaf_size=bench_config.leaf_size,
    )
    name = config.datasets[0]
    graph = build_dataset(name, scale=config.scale, seed=config.seed)
    serial_stl = StableTreeLabelling.build(graph.copy(), config.hierarchy_options())
    sharded_stl = StableTreeLabelling(
        graph.copy(),
        serial_stl.hierarchy,
        serial_stl.labels.copy(),
        construction_seconds=serial_stl.construction_seconds,
    )
    no_rebuild = BatchPolicy(rebuild_fraction=None)
    serial_stl.batch_policy = no_rebuild
    sharded_stl.batch_policy = no_rebuild

    stream = mixed_update_stream(
        serial_stl.graph, 1000, factor=config.update_factor, seed=config.seed
    )
    halves = (stream.increases(), stream.decreases())

    serial_seconds, _ = measure_batched_seconds(serial_stl, halves, parallel=False)
    sharded_seconds, _ = measure_batched_seconds(sharded_stl, halves, parallel=True)

    plan = sharded_stl._shard_engine.planner.plan(
        stream.increases().coalesce(sharded_stl.graph)
    )
    report(
        f"Figure 10 ({name}): 1k-update workload, serial vs sharded batch engine\n"
        f"stream: {len(stream)} updates over {len(stream) // 2} distinct edges "
        f"(of {sharded_stl.graph.num_edges} in the graph)\n"
        f"shard plan: {plan.populated_shards} populated shards, "
        f"balance {plan.balance:.2f}, {len(plan.residual)} residual updates\n"
        f"serial engine [s]   | {serial_seconds:.3f}\n"
        f"sharded engine [s]  | {sharded_seconds:.3f}"
    )

    # Equivalence guarantee on the Figure 10 workload: entry-wise identical
    # labels and identical final graph weights.
    for u, v, w in graph.edges():
        assert serial_stl.graph.weight(u, v) == w
        assert sharded_stl.graph.weight(u, v) == w
    assert serial_stl.labels.equals(sharded_stl.labels)
    # The pool cannot beat the GIL, but the plan/merge overhead must stay
    # bounded; 2x absorbs loaded-CI jitter without masking a pathology.
    assert sharded_seconds <= serial_seconds * 2.0
