"""Benchmark: Table 3 -- update time per edge-weight update.

Per-method micro-benchmarks (pytest-benchmark groups) plus the printed
Table 3 analogue produced by the experiment driver.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments.harness import build_dynamic_competitors, build_stl_variants
from repro.experiments.table3 import format_table3, run_table3
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import random_update_batch


@pytest.fixture(scope="module")
def update_setup(bench_config):
    graph = build_dataset(bench_config.datasets[0], bench_config.scale, bench_config.seed)
    indexes = {}
    indexes.update(build_stl_variants(graph, bench_config.hierarchy_options()))
    indexes.update(build_dynamic_competitors(graph))
    increases, decreases = random_update_batch(
        graph, bench_config.updates_per_batch, seed=bench_config.seed
    )
    return indexes, increases, decreases


def _replay(index, increases, decreases):
    for update in increases:
        index.apply_update(update)
    for update in decreases:
        index.apply_update(update)


@pytest.mark.benchmark(group="table3-update")
@pytest.mark.parametrize("method", ["STL-P", "STL-L", "IncH2H", "DTDHL"])
def test_table3_update_round(benchmark, update_setup, method):
    """One increase+restore round per method (the Table 3 measurement unit)."""
    indexes, increases, decreases = update_setup
    benchmark.pedantic(
        _replay, args=(indexes[method], increases, decreases), rounds=3, iterations=1
    )


def test_table3_report(benchmark, bench_config):
    """Regenerate and print the Table 3 analogue."""
    rows = benchmark.pedantic(run_table3, args=(bench_config,), rounds=1, iterations=1)
    report(format_table3(rows))
    for row in rows:
        # Robust shape checks (see EXPERIMENTS.md for the full discussion):
        # both STL variants maintain faster than the H2H-based competitors,
        # and DTDHL is the slowest method.
        assert row.decrease_ms["STL-P"] <= row.decrease_ms["IncH2H"]
        assert row.decrease_ms["STL-L"] <= row.decrease_ms["IncH2H"]
        assert row.increase_ms["STL-P"] <= row.increase_ms["DTDHL"]
        assert row.increase_ms["DTDHL"] >= row.increase_ms["IncH2H"]
