"""Benchmark: Figure 8 -- update time under varying weight-change factors."""

from benchmarks.conftest import report
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.harness import ExperimentConfig


def test_figure8_report(benchmark, bench_config):
    """Regenerate and print the Figure 8 series."""
    config = ExperimentConfig(
        datasets=bench_config.datasets[:1],
        scale=bench_config.scale,
        updates_per_batch=15,
        leaf_size=bench_config.leaf_size,
    )
    results = benchmark.pedantic(
        run_figure8, args=(config,), kwargs={"num_factors": 4}, rounds=1, iterations=1
    )
    report(format_figure8(results))
    for series in results:
        assert series.factors == [2.0, 3.0, 4.0, 5.0]
        # STL decrease stays clearly below IncH2H decrease at every factor.
        for stl_dec, inch2h_dec in zip(series.series_ms["STL-P-"], series.series_ms["IncH2H-"]):
            assert stl_dec <= inch2h_dec
